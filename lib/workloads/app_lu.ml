(* lu (PolyBench-GPU): in-place LU decomposition.  Per pivot k the host
   launches a row-scaling kernel and a trailing-submatrix update
   kernel.  All loads deterministic. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

(* a[k*n+j] /= a[k*n+k]  for j in (k, n) *)
let row_kernel () =
  let b = B.create ~name:"lu_row" ~params:[ u64 "a"; u32 "n"; u32 "k" ] () in
  let ap = B.ld_param b "a" in
  let n = B.ld_param b "n" in
  let k = B.ld_param b "k" in
  let j = B.add b (B.add b (gtid_x b) k) (B.int 1) in
  let p = B.setp b Lt j n in
  B.if_ b p (fun () ->
      let akj = ldf b ap (B.add b (B.mul b k n) j) in
      let akk = ldf b ap (B.add b (B.mul b k n) k) in
      stf b ap (B.add b (B.mul b k n) j) (B.fdiv b akj akk));
  B.finish b

(* a[i*n+j] -= a[i*n+k] * a[k*n+j]  for i,j in (k, n) *)
let sub_kernel () =
  let b = B.create ~name:"lu_sub" ~params:[ u64 "a"; u32 "n"; u32 "k" ] () in
  let ap = B.ld_param b "a" in
  let n = B.ld_param b "n" in
  let k = B.ld_param b "k" in
  let j = B.add b (B.add b (gtid_x b) k) (B.int 1) in
  let i = B.add b (B.add b (gtid_y b) k) (B.int 1) in
  let pi = B.setp b Lt i n in
  let pj = B.setp b Lt j n in
  let inside = B.pand b pi pj in
  B.if_ b inside (fun () ->
      let aik = ldf b ap (B.add b (B.mul b i n) k) in
      let akj = ldf b ap (B.add b (B.mul b k n) j) in
      let aij = ldf b ap (B.add b (B.mul b i n) j) in
      stf b ap (B.add b (B.mul b i n) j) (B.fsub b aij (B.fmul b aik akj)));
  B.finish b

let size_of_scale = function
  | App.Small -> 32
  | App.Default -> 96
  | App.Large -> 192

let make scale =
  let n = size_of_scale scale in
  let rng = Prng.create 0x10DE in
  let a =
    Array.init (n * n) (fun idx ->
        let i = idx / n and j = idx mod n in
        let v = Prng.float_range rng (-1.0) 1.0 in
        if i = j then v +. 8.0 else v)
  in
  let global = Gsim.Mem.create (4 * 1024 * 1024) in
  let layout = Layout.create global in
  let a_base = Dataset.store_f32_array layout a in
  let row = row_kernel () in
  let sub = sub_kernel () in
  let params k = [ Layout.param "a" a_base; Layout.param_int "n" n; Layout.param_int "k" k ] in
  let launches =
    List.concat_map
      (fun k ->
        [
          (fun () ->
            Gsim.Launch.create ~kernel:row
              ~grid:(cdiv (n - k - 1) 256, 1, 1)
              ~block:(256, 1, 1) ~params:(params k) ~global);
          (fun () ->
            Gsim.Launch.create ~kernel:sub
              ~grid:(cdiv (n - k - 1) 16, cdiv (n - k - 1) 16, 1)
              ~block:(16, 16, 1) ~params:(params k) ~global);
        ])
      (List.init (n - 1) Fun.id)
  in
  let check () =
    (* Crout factors: L lower (incl. diagonal) = a[i][k] for k <= i,
       U unit-upper = a[k][j] for j > k.  L*U must reconstruct the
       input within f32 tolerance. *)
    let get i j = Gsim.Mem.get_f32 global (a_base + (4 * ((i * n) + j))) in
    let ok = ref true in
    let samples = min n 16 in
    for si = 0 to samples - 1 do
      for sj = 0 to samples - 1 do
        let i = si * n / samples and j = sj * n / samples in
        let acc = ref 0.0 in
        for k = 0 to min i j do
          let l = get i k in
          let u = if k = j then 1.0 else get k j in
          acc := !acc +. (l *. u)
        done;
        let expect = round_f32 a.((i * n) + j) in
        if not (Float.abs (!acc -. expect) <= 0.05 +. (0.05 *. Float.abs expect))
        then ok := false
      done
    done;
    !ok
  in
  App.launch_list ~global ~check launches

let app =
  {
    App.name = "lu";
    category = App.Linear;
    description = "in-place LU decomposition (row scale + trailing update)";
    seed = 0x10DE;
    make;
  }
