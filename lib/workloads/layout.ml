(* Bump allocator laying out kernel arrays in the flat global memory.
   Allocations are 128-byte aligned (one cache line) so array bases
   never split lines, matching cudaMalloc's alignment guarantees. *)

type t = { mem : Gsim.Mem.t; mutable cursor : int }

let alignment = 128

let create mem = { mem; cursor = 0 }

let mem t = t.mem

(* Reserve [bytes] and return the base address. *)
let alloc t bytes =
  let base = t.cursor in
  let bytes = (bytes + alignment - 1) / alignment * alignment in
  if base + bytes > Gsim.Mem.size t.mem then
    invalid_arg
      (Printf.sprintf "Layout.alloc: %d bytes requested, %d available" bytes
         (Gsim.Mem.size t.mem - base));
  t.cursor <- base + bytes;
  base

(* Typed array allocators, returning the base address. *)
let alloc_f32 t n = alloc t (4 * n)
let alloc_u32 t n = alloc t (4 * n)

let fill_f32 t base n f =
  for i = 0 to n - 1 do
    Gsim.Mem.set_f32 t.mem (base + (4 * i)) (f i)
  done

let fill_u32 t base n f =
  for i = 0 to n - 1 do
    Gsim.Mem.set_u32 t.mem (base + (4 * i)) (f i)
  done

let param name addr = (name, Int64.of_int addr)
let param_int name v = (name, Int64.of_int v)
