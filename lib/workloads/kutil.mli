(** Shared helpers for writing kernels with the builder eDSL. *)

open Ptx.Types

val u64 : string -> Ptx.Kernel.param
val u32 : string -> Ptx.Kernel.param
val f32 : string -> Ptx.Kernel.param

val gtid_x : Ptx.Builder.t -> operand
(** Global 1-D thread index [ctaid.x*ntid.x + tid.x]. *)

val gtid_y : Ptx.Builder.t -> operand

val f32_acc : Ptx.Builder.t -> int
(** Fresh accumulator register initialised to 0.0f. *)

val ldf : Ptx.Builder.t -> operand -> operand -> operand
(** Load f32 at [base + 4*idx] from global memory. *)

val ldu : Ptx.Builder.t -> operand -> operand -> operand
(** Load u32 at [base + 4*idx] from global memory. *)

val stf : Ptx.Builder.t -> operand -> operand -> operand -> unit
val stu : Ptx.Builder.t -> operand -> operand -> operand -> unit

val round_f32 : float -> float
(** f32 rounding identical to the simulator's register semantics, for
    bit-exact host references. *)

val cdiv : int -> int -> int
(** Ceiling division, for grid sizing. *)
