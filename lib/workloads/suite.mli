(** Registry of the 15 applications, in the paper's Table I order. *)

val all : App.t list

val find : string -> App.t
(** @raise Invalid_argument listing the valid names. *)

val by_category : App.category -> App.t list
val names : string list
