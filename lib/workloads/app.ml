(* Application descriptors: the 15 benchmarks of Table I, rewritten in
   the PTX-like ISA over synthetic datasets.

   An application builds a [run]: a global-memory image plus a host
   driver that yields kernel launches one at a time (matching how the
   CUDA host code loops kernels, e.g. bfs relaunching until the
   frontier empties).  [check] verifies the computation against a host
   reference after the run completes. *)

type category = Linear | Image | Graph

let category_name = function
  | Linear -> "Linear"
  | Image -> "Image"
  | Graph -> "Graph"

(* Dataset scale: [Small] keeps unit tests fast, [Default] is the bench
   setting, [Large] stresses the memory system harder. *)
type scale = Small | Default | Large

let scale_of_string = function
  | "small" -> Small
  | "default" -> Default
  | "large" -> Large
  | s -> invalid_arg ("App.scale_of_string: " ^ s)

let string_of_scale = function
  | Small -> "small"
  | Default -> "default"
  | Large -> "large"

type run = {
  global : Gsim.Mem.t;
  next_launch : unit -> Gsim.Launch.t option;
  check : unit -> bool;
}

type t = {
  name : string;
  category : category;
  description : string;
  seed : int; (* PRNG seed of the synthetic dataset (see Prng.create) *)
  make : scale -> run;
}

(* A run consisting of one kernel launch. *)
let single_launch ~global ~check launch =
  let fired = ref false in
  {
    global;
    next_launch =
      (fun () ->
        if !fired then None
        else begin
          fired := true;
          Some launch
        end);
    check;
  }

(* A run that plays a fixed list of launches in order (lazily built). *)
let launch_list ~global ~check launches =
  let remaining = ref launches in
  {
    global;
    next_launch =
      (fun () ->
        match !remaining with
        | [] -> None
        | mk :: rest ->
            remaining := rest;
            Some (mk ()));
    check;
  }

(* A run driven by host logic: [driver i] returns the i-th launch or
   None to stop; bounded by [max_iters] as a safety net. *)
let driven ~global ~check ~max_iters driver =
  let i = ref 0 in
  {
    global;
    next_launch =
      (fun () ->
        if !i >= max_iters then None
        else begin
          let l = driver !i in
          incr i;
          l
        end);
    check;
  }

let close_f32 a b =
  let d = Float.abs (a -. b) in
  d <= 1e-3 +. (1e-3 *. Float.abs b)
