(* Deterministic pseudo-random number generation for dataset synthesis.

   splitmix64 seeds a xoshiro256++ generator; both are standard,
   well-tested recurrences.  Every dataset in the suite is generated
   from a fixed seed so runs are exactly reproducible. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let next t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(* Uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

(* Uniform in [0, 1). *)
let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

(* Uniform in [lo, hi). *)
let float_range t lo hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (next t) 1L = 1L

(* In-place Fisher–Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
