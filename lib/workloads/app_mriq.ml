(* mriq (Parboil): MRI reconstruction Q-matrix computation.  Threads
   iterate over all k-space samples (held in constant memory, as in
   Parboil) computing sin/cos phase contributions for their voxel.
   Global loads are only the per-voxel coordinates — the paper's
   lowest global-load-fraction application (0.03%) — and the kernel is
   SFU-heavy. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

let two_pi = 6.2831853

(* phiMag[k] = phiR[k]^2 + phiI[k]^2 — Parboil's first kernel. *)
let phimag_kernel () =
  let b =
    B.create ~name:"mriq_phimag"
      ~params:[ u64 "phiR"; u64 "phiI"; u64 "phiMag"; u32 "nk" ]
      ()
  in
  let rp = B.ld_param b "phiR" in
  let ip = B.ld_param b "phiI" in
  let mp = B.ld_param b "phiMag" in
  let nk = B.ld_param b "nk" in
  let k = gtid_x b in
  let p = B.setp b Lt k nk in
  B.if_ b p (fun () ->
      let re = ldf b rp k in
      let im = ldf b ip k in
      stf b mp k (B.fadd b (B.fmul b re re) (B.fmul b im im)));
  B.finish b

(* k-space sample record: kx, ky, kz, phi — stored SoA in const space *)
let kernel () =
  let b =
    B.create ~name:"mriq_computeq"
      ~params:
        [ u64 "xs"; u64 "ys"; u64 "zs"; u64 "kx"; u64 "ky"; u64 "kz";
          u64 "phi"; u64 "qr"; u64 "qi"; u32 "nx"; u32 "nk" ]
      ()
  in
  let xs = B.ld_param b "xs" in
  let ys = B.ld_param b "ys" in
  let zs = B.ld_param b "zs" in
  let kx = B.ld_param b "kx" in
  let ky = B.ld_param b "ky" in
  let kz = B.ld_param b "kz" in
  let phi = B.ld_param b "phi" in
  let qr = B.ld_param b "qr" in
  let qi = B.ld_param b "qi" in
  let nx = B.ld_param b "nx" in
  let nk = B.ld_param b "nk" in
  let i = gtid_x b in
  let p = B.setp b Lt i nx in
  B.if_ b p (fun () ->
      let x = ldf b xs i in
      let y = ldf b ys i in
      let z = ldf b zs i in
      let accr = f32_acc b in
      let acci = f32_acc b in
      B.for_loop b ~init:(B.int 0) ~bound:nk ~step:(B.int 1) (fun k ->
          let ldc base idx = B.ld b Const F32 (B.at b ~base ~scale:4 idx) in
          let kxv = ldc kx k in
          let kyv = ldc ky k in
          let kzv = ldc kz k in
          let phiv = ldc phi k in
          let dot =
            B.fadd b
              (B.fadd b (B.fmul b kxv x) (B.fmul b kyv y))
              (B.fmul b kzv z)
          in
          let arg = B.fmul b (B.float two_pi) dot in
          let c = B.funary b Cos arg in
          let s = B.funary b Sin arg in
          B.emit b (Ptx.Instr.Fma (F32, accr, phiv, c, Reg accr));
          B.emit b (Ptx.Instr.Fma (F32, acci, phiv, s, Reg acci)));
      stf b qr i (Reg accr);
      stf b qi i (Reg acci));
  B.finish b

let size_of_scale = function
  | App.Small -> (512, 64) (* voxels, k-samples *)
  | App.Default -> (4096, 192)
  | App.Large -> (16384, 512)

let make scale =
  let nx, nk = size_of_scale scale in
  let rng = Prng.create 0x3319 in
  let mk n = Array.init n (fun _ -> Prng.float_range rng (-1.0) 1.0) in
  let xs = mk nx and ys = mk nx and zs = mk nx in
  let kxa = mk nk and kya = mk nk and kza = mk nk in
  let phir = mk nk and phii = mk nk in
  (* phi = phiR^2 + phiI^2, computed on-device by the phimag kernel *)
  let phia =
    Array.init nk (fun i ->
        let r = round_f32 phir.(i) and im = round_f32 phii.(i) in
        round_f32 (round_f32 (r *. r) +. round_f32 (im *. im)))
  in
  let global = Gsim.Mem.create (8 * 1024 * 1024) in
  let layout = Layout.create global in
  let xs_b = Dataset.store_f32_array layout xs in
  let ys_b = Dataset.store_f32_array layout ys in
  let zs_b = Dataset.store_f32_array layout zs in
  let kx_b = Dataset.store_f32_array layout kxa in
  let ky_b = Dataset.store_f32_array layout kya in
  let kz_b = Dataset.store_f32_array layout kza in
  let phir_b = Dataset.store_f32_array layout phir in
  let phii_b = Dataset.store_f32_array layout phii in
  let phi_b = Layout.alloc_f32 layout nk in
  let qr_b = Layout.alloc_f32 layout nx in
  let qi_b = Layout.alloc_f32 layout nx in
  let kernel = kernel () in
  let phimag = phimag_kernel () in
  let launch_phimag () =
    Gsim.Launch.create ~kernel:phimag
      ~grid:(cdiv nk 256, 1, 1)
      ~block:(256, 1, 1)
      ~params:
        [ Layout.param "phiR" phir_b; Layout.param "phiI" phii_b;
          Layout.param "phiMag" phi_b; Layout.param_int "nk" nk ]
      ~global
  in
  let launch () =
    Gsim.Launch.create ~kernel
      ~grid:(cdiv nx 256, 1, 1)
      ~block:(256, 1, 1)
      ~params:
        [ Layout.param "xs" xs_b; Layout.param "ys" ys_b;
          Layout.param "zs" zs_b; Layout.param "kx" kx_b;
          Layout.param "ky" ky_b; Layout.param "kz" kz_b;
          Layout.param "phi" phi_b; Layout.param "qr" qr_b;
          Layout.param "qi" qi_b; Layout.param_int "nx" nx;
          Layout.param_int "nk" nk ]
      ~global
  in
  let check () =
    let ok = ref true in
    let r = Array.map round_f32 in
    let xs = r xs and ys = r ys and zs = r zs in
    let kxa = r kxa and kya = r kya and kza = r kza and phia = r phia in
    (* sample voxels; replicate the f32 rounding of the kernel *)
    for s = 0 to 15 do
      let i = s * nx / 16 in
      let accr = ref 0.0 and acci = ref 0.0 in
      for k = 0 to nk - 1 do
        let dot =
          round_f32
            (round_f32 (round_f32 (kxa.(k) *. xs.(i)) +. round_f32 (kya.(k) *. ys.(i)))
            +. round_f32 (kza.(k) *. zs.(i)))
        in
        (* the kernel's float immediate is a double, as in Fimm *)
        let arg = round_f32 (two_pi *. dot) in
        accr := round_f32 ((phia.(k) *. round_f32 (Float.cos arg)) +. !accr);
        acci := round_f32 ((phia.(k) *. round_f32 (Float.sin arg)) +. !acci)
      done;
      if not (App.close_f32 !accr (Gsim.Mem.get_f32 global (qr_b + (4 * i))))
      then ok := false;
      if not (App.close_f32 !acci (Gsim.Mem.get_f32 global (qi_b + (4 * i))))
      then ok := false
    done;
    !ok
  in
  App.launch_list ~global ~check [ launch_phimag; launch ]

let app =
  {
    App.name = "mriq";
    category = App.Image;
    description = "MRI Q-matrix computation (SFU-heavy, const k-space)";
    seed = 0x3319;
    make;
  }
