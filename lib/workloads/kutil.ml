(* Small shared helpers for writing kernels with the builder eDSL. *)

open Ptx.Types
module B = Ptx.Builder

let u64 n = { Ptx.Kernel.pname = n; pty = U64 }
let u32 n = { Ptx.Kernel.pname = n; pty = U32 }
let f32 n = { Ptx.Kernel.pname = n; pty = F32 }

(* Global 1-D / 2-D thread indices. *)
let gtid_x b = B.mad b B.ctaid_x B.ntid_x B.tid_x
let gtid_y b = B.mad b B.ctaid_y B.ntid_y B.tid_y

(* An accumulator register initialised to 0.0f; mutate with B.emit. *)
let f32_acc b =
  let r = B.fresh_reg b in
  B.emit b (Ptx.Instr.Mov (r, Fimm 0.0));
  r

(* Load float at base + 4*idx. *)
let ldf b base idx = B.ld b Global F32 (B.at b ~base ~scale:4 idx)

(* Load u32 at base + 4*idx. *)
let ldu b base idx = B.ld b Global U32 (B.at b ~base ~scale:4 idx)

let stf b base idx v = B.st b Global F32 (B.at b ~base ~scale:4 idx) v
let stu b base idx v = B.st b Global U32 (B.at b ~base ~scale:4 idx) v

(* f32 rounding identical to the simulator's register semantics, for
   bit-exact host references. *)
let round_f32 = Gsim.Exec.round_f32

(* ceil-division for grid sizing *)
let cdiv a b = (a + b - 1) / b
