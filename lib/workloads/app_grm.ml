(* grm (PolyBench-GPU gramschmidt): modified Gram-Schmidt QR
   decomposition.  Per column k the host launches three kernels:
   norm of column k (single-thread reduction, as in PolyBench), column
   normalization, and the projection update of the trailing columns.
   All loads are deterministic (indices from ids, k parameter and loop
   counters). *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

(* r[k*n+k] = sqrt( sum_i a[i*n+k]^2 ) — one thread, as in PolyBench. *)
let norm_kernel () =
  let b =
    B.create ~name:"grm_norm" ~params:[ u64 "a"; u64 "r"; u32 "n"; u32 "k" ] ()
  in
  let ap = B.ld_param b "a" in
  let rp = B.ld_param b "r" in
  let n = B.ld_param b "n" in
  let k = B.ld_param b "k" in
  let tid = gtid_x b in
  let p0 = B.setp b Eq tid (B.int 0) in
  B.if_ b p0 (fun () ->
      let acc = f32_acc b in
      B.for_loop b ~init:(B.int 0) ~bound:n ~step:(B.int 1) (fun i ->
          let v = ldf b ap (B.add b (B.mul b i n) k) in
          B.emit b (Ptx.Instr.Fma (F32, acc, v, v, Reg acc)));
      let nrm = B.funary b Sqrt (Reg acc) in
      stf b rp (B.add b (B.mul b k n) k) nrm);
  B.finish b

(* q[i*n+k] = a[i*n+k] / r[k*n+k] *)
let qcol_kernel () =
  let b =
    B.create ~name:"grm_qcol"
      ~params:[ u64 "a"; u64 "r"; u64 "q"; u32 "n"; u32 "k" ]
      ()
  in
  let ap = B.ld_param b "a" in
  let rp = B.ld_param b "r" in
  let qp = B.ld_param b "q" in
  let n = B.ld_param b "n" in
  let k = B.ld_param b "k" in
  let i = gtid_x b in
  let p = B.setp b Lt i n in
  B.if_ b p (fun () ->
      let v = ldf b ap (B.add b (B.mul b i n) k) in
      let rkk = ldf b rp (B.add b (B.mul b k n) k) in
      stf b qp (B.add b (B.mul b i n) k) (B.fdiv b v rkk));
  B.finish b

(* for each trailing column j > k:
     r[k*n+j] = sum_i q[i*n+k]*a[i*n+j];  a[i*n+j] -= q[i*n+k]*r[k*n+j] *)
let update_kernel () =
  let b =
    B.create ~name:"grm_update"
      ~params:[ u64 "a"; u64 "r"; u64 "q"; u32 "n"; u32 "k" ]
      ()
  in
  let ap = B.ld_param b "a" in
  let rp = B.ld_param b "r" in
  let qp = B.ld_param b "q" in
  let n = B.ld_param b "n" in
  let k = B.ld_param b "k" in
  let j = B.add b (B.add b (gtid_x b) k) (B.int 1) in
  let p = B.setp b Lt j n in
  B.if_ b p (fun () ->
      let acc = f32_acc b in
      B.for_loop b ~init:(B.int 0) ~bound:n ~step:(B.int 1) (fun i ->
          let qik = ldf b qp (B.add b (B.mul b i n) k) in
          let aij = ldf b ap (B.add b (B.mul b i n) j) in
          B.emit b (Ptx.Instr.Fma (F32, acc, qik, aij, Reg acc)));
      stf b rp (B.add b (B.mul b k n) j) (Reg acc);
      B.for_loop b ~init:(B.int 0) ~bound:n ~step:(B.int 1) (fun i ->
          let qik = ldf b qp (B.add b (B.mul b i n) k) in
          let aij = ldf b ap (B.add b (B.mul b i n) j) in
          let upd = B.fsub b aij (B.fmul b qik (Reg acc)) in
          stf b ap (B.add b (B.mul b i n) j) upd));
  B.finish b

let size_of_scale = function
  | App.Small -> 32
  | App.Default -> 80
  | App.Large -> 128

let make scale =
  let n = size_of_scale scale in
  let rng = Prng.create 0x9A11 in
  let a = Dataset.dense_matrix rng n n in
  let global = Gsim.Mem.create (4 * 1024 * 1024) in
  let layout = Layout.create global in
  let a_base = Dataset.store_f32_array layout a in
  let r_base = Layout.alloc_f32 layout (n * n) in
  let q_base = Layout.alloc_f32 layout (n * n) in
  let norm = norm_kernel () in
  let qcol = qcol_kernel () in
  let update = update_kernel () in
  let params k =
    [ Layout.param "a" a_base; Layout.param "r" r_base;
      Layout.param "q" q_base; Layout.param_int "n" n; Layout.param_int "k" k ]
  in
  let launches =
    List.concat_map
      (fun k ->
        [
          (fun () ->
            Gsim.Launch.create ~kernel:norm ~grid:(1, 1, 1) ~block:(32, 1, 1)
              ~params:
                [ Layout.param "a" a_base; Layout.param "r" r_base;
                  Layout.param_int "n" n; Layout.param_int "k" k ]
              ~global);
          (fun () ->
            Gsim.Launch.create ~kernel:qcol
              ~grid:(cdiv n 32, 1, 1)
              ~block:(32, 1, 1) ~params:(params k) ~global);
          (fun () ->
            Gsim.Launch.create ~kernel:update
              ~grid:(cdiv n 32, 1, 1)
              ~block:(32, 1, 1) ~params:(params k) ~global);
        ])
      (List.init n Fun.id)
  in
  let check () =
    (* columns of Q orthonormal within f32 tolerance *)
    let q i j = Gsim.Mem.get_f32 global (q_base + (4 * ((i * n) + j))) in
    let dot c1 c2 =
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (q i c1 *. q i c2)
      done;
      !acc
    in
    let ok = ref true in
    for c = 0 to min 7 (n - 1) do
      if Float.abs (dot c c -. 1.0) > 0.05 then ok := false;
      if c + 1 < n && Float.abs (dot c (c + 1)) > 0.05 then ok := false
    done;
    !ok
  in
  App.launch_list ~global ~check launches

let app =
  {
    App.name = "grm";
    category = App.Linear;
    description = "Gram-Schmidt QR decomposition (3 kernels per column)";
    seed = 0x9A11;
    make;
  }
