(* mst (LonestarGPU): minimum spanning forest, Boruvka's algorithm.
   Per round: every component finds its minimum-weight outgoing edge
   (packed (weight << 16) | edge into an atomic-min cell), roots merge
   along those edges (mutual pairs tie-break on component id), and
   pointer-jumping compresses the component map.  comp[comp[v]] is the
   classic non-deterministic indirect load. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

(* cand[tid] = INF *)
let reset_kernel () =
  let b = B.create ~name:"mst_reset" ~params:[ u64 "cand"; u32 "n" ] () in
  let cp = B.ld_param b "cand" in
  let n = B.ld_param b "n" in
  let v = gtid_x b in
  let pin = B.setp b Lt v n in
  B.if_ b pin (fun () -> stu b cp v (B.int64 0xFFFFFFFFL));
  B.finish b

(* each vertex offers its cheapest cross-component edge to its root *)
let find_kernel () =
  let b =
    B.create ~name:"mst_find"
      ~params:
        [ u64 "row_ptr"; u64 "edges"; u64 "w"; u64 "comp"; u64 "cand"; u32 "n" ]
      ()
  in
  let rp = B.ld_param b "row_ptr" in
  let ep = B.ld_param b "edges" in
  let wp = B.ld_param b "w" in
  let comp = B.ld_param b "comp" in
  let cand = B.ld_param b "cand" in
  let n = B.ld_param b "n" in
  let v = gtid_x b in
  let pin = B.setp b Lt v n in
  B.if_ b pin (fun () ->
      let c = ldu b comp v in
      let start = ldu b rp v in
      let stop = ldu b rp (B.add b v (B.int 1)) in
      B.for_loop b ~init:start ~bound:stop ~step:(B.int 1) (fun e ->
          let d = ldu b ep e in
          let cd = ldu b comp d in
          let pcross = B.setp b Ne cd c in
          B.if_ b pcross (fun () ->
              let wt = ldu b wp e in
              let pack = B.add b (B.mul b wt (B.int 65536)) e in
              ignore (B.atom b Amin U32 (B.at b ~base:cand ~scale:4 c) pack))));
  B.finish b

(* roots merge along their candidate edges *)
let merge_kernel () =
  let b =
    B.create ~name:"mst_merge"
      ~params:
        [ u64 "edges"; u64 "comp"; u64 "cand"; u64 "sum"; u64 "flag"; u32 "n" ]
      ()
  in
  let ep = B.ld_param b "edges" in
  let comp = B.ld_param b "comp" in
  let cand = B.ld_param b "cand" in
  let sum = B.ld_param b "sum" in
  let flag = B.ld_param b "flag" in
  let n = B.ld_param b "n" in
  let c = gtid_x b in
  let pin = B.setp b Lt c n in
  B.if_ b pin (fun () ->
      let pk = ldu b cand c in
      let phas = B.setp b Ne pk (B.int64 0xFFFFFFFFL) in
      B.if_ b phas (fun () ->
          let e = B.band b pk (B.int 0xFFFF) in
          let wt = B.shr b pk (B.int 16) in
          let d = ldu b ep e in
          let cd = ldu b comp d in
          let pcross = B.setp b Ne cd c in
          B.if_ b pcross (fun () ->
              (* mutual-pair tie-break: when cand[cd] leads back to c,
                 only the larger id merges *)
              let skip = B.fresh_reg b in
              B.emit b (Ptx.Instr.Mov (skip, B.int 0));
              let pk2 = ldu b cand cd in
              let phas2 = B.setp b Ne pk2 (B.int64 0xFFFFFFFFL) in
              B.if_ b phas2 (fun () ->
                  let e2 = B.band b pk2 (B.int 0xFFFF) in
                  let d2 = ldu b ep e2 in
                  let cd2 = ldu b comp d2 in
                  let pback = B.setp b Eq cd2 c in
                  let plower = B.setp b Lt c cd in
                  let pmutual_skip = B.pand b pback plower in
                  B.if_ b pmutual_skip (fun () ->
                      B.emit b (Ptx.Instr.Mov (skip, B.int 1))));
              let pgo = B.setp b Eq (Reg skip) (B.int 0) in
              B.if_ b pgo (fun () ->
                  stu b comp c cd;
                  ignore (B.atom b Aadd U32 (B.addr sum) wt);
                  B.st b Global U32 (B.addr flag) (B.int 1)))));
  B.finish b

(* comp[v] <- comp[comp[v]] until stable *)
let jump_kernel () =
  let b =
    B.create ~name:"mst_jump" ~params:[ u64 "comp"; u64 "flag"; u32 "n" ] ()
  in
  let comp = B.ld_param b "comp" in
  let flag = B.ld_param b "flag" in
  let n = B.ld_param b "n" in
  let v = gtid_x b in
  let pin = B.setp b Lt v n in
  B.if_ b pin (fun () ->
      let c1 = ldu b comp v in
      let c2 = ldu b comp c1 in
      let pch = B.setp b Ne c2 c1 in
      B.if_ b pch (fun () ->
          stu b comp v c2;
          B.st b Global U32 (B.addr flag) (B.int 1)));
  B.finish b

let size_of_scale = function
  | App.Small -> (256, 3)
  | App.Default -> (2048, 4)
  | App.Large -> (4096, 4)

let make scale =
  let n, ef = size_of_scale scale in
  let rng = Prng.create 0x357 in
  (* undirected multigraph with one unique weight per undirected edge
     (both directed copies share it) — required for Boruvka *)
  let n_base = n * ef in
  let base =
    Array.init n_base (fun i -> (Prng.int rng n, Prng.int rng n, i + 1))
  in
  let dir_edges = ref [] and dir_vals = ref [] in
  Array.iter
    (fun (u, v, w) ->
      dir_edges := (u, v) :: (v, u) :: !dir_edges;
      dir_vals := float_of_int w :: float_of_int w :: !dir_vals)
    base;
  let g = Dataset.csr_of_edges ~n_rows:n !dir_edges !dir_vals in
  let m = g.Dataset.n_edges in
  assert (m < 65536);
  (* per-directed-copy weights, aligned with the CSR edge order *)
  let weights = Array.map int_of_float g.Dataset.values in
  let global = Gsim.Mem.create (64 * 1024 * 1024) in
  let layout = Layout.create global in
  let rp_base = Dataset.store_u32_array layout g.Dataset.row_ptr in
  let ep_base = Dataset.store_u32_array layout g.Dataset.col_idx in
  let w_base = Dataset.store_u32_array layout weights in
  let comp = Layout.alloc_u32 layout n in
  let cand = Layout.alloc_u32 layout n in
  let sum = Layout.alloc_u32 layout 1 in
  let flag = Layout.alloc_u32 layout 1 in
  Layout.fill_u32 layout comp n (fun v -> v);
  let reset = reset_kernel () in
  let find = find_kernel () in
  let merge = merge_kernel () in
  let jump = jump_kernel () in
  let grid = (cdiv n 384, 1, 1) in
  let block = (384, 1, 1) in
  let mk kernel params () = Gsim.Launch.create ~kernel ~grid ~block ~params ~global in
  let reset_l = mk reset [ Layout.param "cand" cand; Layout.param_int "n" n ] in
  let find_l =
    mk find
      [ Layout.param "row_ptr" rp_base; Layout.param "edges" ep_base;
        Layout.param "w" w_base; Layout.param "comp" comp;
        Layout.param "cand" cand; Layout.param_int "n" n ]
  in
  let merge_l =
    mk merge
      [ Layout.param "edges" ep_base; Layout.param "comp" comp;
        Layout.param "cand" cand; Layout.param "sum" sum;
        Layout.param "flag" flag; Layout.param_int "n" n ]
  in
  let jump_l =
    mk jump
      [ Layout.param "comp" comp; Layout.param "flag" flag;
        Layout.param_int "n" n ]
  in
  (* host driver: rounds of reset-find-merge then jump to fixpoint *)
  let state = ref `Reset in
  let rounds = ref 0 in
  let max_rounds = 24 in
  let next_launch () =
    match !state with
    | `Reset ->
        state := `Find;
        Some (reset_l ())
    | `Find ->
        state := `Merge;
        Gsim.Mem.set_u32 global flag 0;
        Some (find_l ())
    | `Merge ->
        state := `Jump;
        Some (merge_l ())
    | `Jump ->
        if Gsim.Mem.get_u32 global flag = 0 then begin
          (* no merges: forest complete *)
          incr rounds;
          None
        end
        else begin
          state := `Jump_check;
          Gsim.Mem.set_u32 global flag 0;
          Some (jump_l ())
        end
    | `Jump_check ->
        if Gsim.Mem.get_u32 global flag <> 0 then begin
          Gsim.Mem.set_u32 global flag 0;
          Some (jump_l ())
        end
        else begin
          incr rounds;
          if !rounds >= max_rounds then None
          else begin
            state := `Find;
            Some (reset_l ())
          end
        end
  in
  let check () =
    (* host Kruskal over the undirected base edges *)
    let parent = Array.init n Fun.id in
    let rec findp x =
      if parent.(x) = x then x
      else begin
        parent.(x) <- findp parent.(x);
        parent.(x)
      end
    in
    let edge_list =
      Array.to_list (Array.map (fun (u, v, w) -> (w, u, v)) base)
      |> List.sort compare
    in
    let total = ref 0 in
    List.iter
      (fun (w, u, v) ->
        let a = findp u and b = findp v in
        if a <> b then begin
          parent.(a) <- b;
          total := !total + w
        end)
      edge_list;
    Gsim.Mem.get_u32 global sum = !total
  in
  { App.global; next_launch; check }

let app =
  {
    App.name = "mst";
    category = App.Graph;
    description = "Boruvka minimum spanning forest (atomic-min candidates)";
    seed = 0x357;
    make;
  }
