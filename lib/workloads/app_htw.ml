(* htw (Rodinia heartwall): ultrasound heart-wall tracking.  One CTA per
   tracked sample point: the point's coordinates are read from input
   arrays (deterministic, indexed by CTA id), the surrounding frame
   window is gathered at addresses derived from those loaded
   coordinates (non-deterministic), correlated against a per-point
   template, and reduced in shared memory. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

let win = 16 (* window side; one CTA = 16x16 threads *)

let kernel () =
  let b =
    B.create ~name:"htw_track"
      ~params:
        [ u64 "frame"; u64 "tmpl"; u64 "px"; u64 "py"; u64 "ssd";
          u32 "fw"; u32 "fh" ]
      ~smem_bytes:(win * win * 4)
      ()
  in
  let frame = B.ld_param b "frame" in
  let tmpl = B.ld_param b "tmpl" in
  let pxp = B.ld_param b "px" in
  let pyp = B.ld_param b "py" in
  let ssd = B.ld_param b "ssd" in
  let fw = B.ld_param b "fw" in
  let _fh = B.ld_param b "fh" in
  let tx = B.mov b B.tid_x in
  let ty = B.mov b B.tid_y in
  let point = B.mov b B.ctaid_x in
  (* point epicenter, loaded from the sample-point arrays *)
  let cx = ldu b pxp point in
  let cy = ldu b pyp point in
  (* frame pixel at (cy+ty, cx+tx): address depends on loaded coords *)
  let frow = B.add b cy ty in
  let fcol = B.add b cx tx in
  let pix = ldf b frame (B.add b (B.mul b frow fw) fcol) in
  (* per-point template pixel: deterministic (ctaid/tid indexing) *)
  let tidx =
    B.add b
      (B.mul b point (B.int (win * win)))
      (B.add b (B.mul b ty (B.int win)) tx)
  in
  let tpix = ldf b tmpl tidx in
  let diff = B.fsub b pix tpix in
  let sh_addr i = B.at b ~base:(B.int 0) ~scale:4 i in
  let lin = B.add b (B.mul b ty (B.int win)) tx in
  B.st b Shared F32 (sh_addr lin) (B.fmul b diff diff);
  B.bar b;
  (* tree-reduce the 256 squared differences *)
  List.iter
    (fun stride ->
      let p_active = B.setp b Lt lin (B.int stride) in
      B.if_ b p_active (fun () ->
          let mine = B.ld b Shared F32 (sh_addr lin) in
          let other = B.ld b Shared F32 (sh_addr (B.add b lin (B.int stride))) in
          B.st b Shared F32 (sh_addr lin) (B.fadd b mine other));
      B.bar b)
    [ 128; 64; 32; 16; 8; 4; 2; 1 ];
  let p0 = B.setp b Eq lin (B.int 0) in
  B.if_ b p0 (fun () ->
      let v = B.ld b Shared F32 (sh_addr (B.int 0)) in
      stf b ssd point v);
  B.finish b

let size_of_scale = function
  | App.Small -> (96, 96, 16) (* frame w, h, points *)
  | App.Default -> (256, 256, 48)
  | App.Large -> (640, 512, 128)

let make scale =
  let fw, fh, npoints = size_of_scale scale in
  let rng = Prng.create 0x47EA in
  let frame = Dataset.image rng fw fh in
  let tmplv =
    Array.init (npoints * win * win) (fun _ -> Prng.float_range rng 0.0 255.0)
  in
  let px = Array.init npoints (fun _ -> Prng.int rng (fw - win)) in
  let py = Array.init npoints (fun _ -> Prng.int rng (fh - win)) in
  let global = Gsim.Mem.create (16 * 1024 * 1024) in
  let layout = Layout.create global in
  let frame_b = Dataset.store_f32_array layout frame in
  let tmpl_b = Dataset.store_f32_array layout tmplv in
  let px_b = Dataset.store_u32_array layout px in
  let py_b = Dataset.store_u32_array layout py in
  let ssd_b = Layout.alloc_f32 layout npoints in
  let kernel = kernel () in
  let launch () =
    Gsim.Launch.create ~kernel ~grid:(npoints, 1, 1) ~block:(win, win, 1)
      ~params:
        [ Layout.param "frame" frame_b; Layout.param "tmpl" tmpl_b;
          Layout.param "px" px_b; Layout.param "py" py_b;
          Layout.param "ssd" ssd_b; Layout.param_int "fw" fw;
          Layout.param_int "fh" fh ]
      ~global
  in
  let check () =
    let ok = ref true in
    for p = 0 to npoints - 1 do
      (* host SSD with matching reduction order *)
      let vals =
        Array.init (win * win) (fun lin ->
            let ty = lin / win and tx = lin mod win in
            let fpix =
              round_f32 frame.(((py.(p) + ty) * fw) + px.(p) + tx)
            in
            let tpix = round_f32 tmplv.((p * win * win) + lin) in
            let d = round_f32 (fpix -. tpix) in
            round_f32 (d *. d))
      in
      let stride = ref 128 in
      while !stride >= 1 do
        for lin = 0 to !stride - 1 do
          vals.(lin) <- round_f32 (vals.(lin) +. vals.(lin + !stride))
        done;
        stride := !stride / 2
      done;
      let got = Gsim.Mem.get_f32 global (ssd_b + (4 * p)) in
      if not (App.close_f32 vals.(0) got) then ok := false
    done;
    !ok
  in
  App.launch_list ~global ~check [ launch ]

let app =
  {
    App.name = "htw";
    category = App.Image;
    description = "heart-wall tracking (windowed SSD around loaded points)";
    seed = 0x47EA;
    make;
  }
