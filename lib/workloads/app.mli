(** Application descriptors: the 15 benchmarks of the paper's Table I,
    rewritten in the PTX-like ISA over synthetic datasets. *)

type category = Linear | Image | Graph

val category_name : category -> string

(** Dataset scale: [Small] keeps unit tests fast, [Default] is the
    bench setting, [Large] stresses the memory system harder. *)
type scale = Small | Default | Large

val scale_of_string : string -> scale
(** @raise Invalid_argument on unknown names. *)

val string_of_scale : scale -> string
(** Inverse of [scale_of_string]; used by the sweep JSON export. *)

(** One run of an application: a global-memory image plus a host driver
    yielding kernel launches one at a time (matching how CUDA host code
    loops kernels, e.g. bfs relaunching until the frontier empties).
    [check] verifies the computation against a host reference after the
    run completes. *)
type run = {
  global : Gsim.Mem.t;
  next_launch : unit -> Gsim.Launch.t option;
  check : unit -> bool;
}

type t = {
  name : string;
  category : category;
  description : string;
  seed : int;
      (** PRNG seed of the app's synthetic dataset ({!Prng.create}) —
          part of a run's content identity: the sweep cache folds it
          into job digests, so regenerating a dataset under a new seed
          invalidates cached results for the app. *)
  make : scale -> run;
}

val single_launch :
  global:Gsim.Mem.t -> check:(unit -> bool) -> Gsim.Launch.t -> run

val launch_list :
  global:Gsim.Mem.t ->
  check:(unit -> bool) ->
  (unit -> Gsim.Launch.t) list ->
  run
(** Plays a fixed list of (lazily built) launches in order. *)

val driven :
  global:Gsim.Mem.t ->
  check:(unit -> bool) ->
  max_iters:int ->
  (int -> Gsim.Launch.t option) ->
  run
(** Host-logic driver: [driver i] returns the i-th launch or [None];
    bounded by [max_iters] as a safety net. *)

val close_f32 : float -> float -> bool
(** Approximate equality with f32-appropriate tolerance. *)
