(* Registry of the 15 applications, in Table I order. *)

let all : App.t list =
  [
    App_mm2.app;
    App_gaus.app;
    App_grm.app;
    App_lu.app;
    App_spmv.app;
    App_htw.app;
    App_mriq.app;
    App_dwt.app;
    App_bpr.app;
    App_srad.app;
    App_bfs.app;
    App_sssp.app;
    App_ccl.app;
    App_mst.app;
    App_mis.app;
  ]

(* Spelling aliases: the paper and our docs write "mm2" for the
   registry's "2mm" (identifiers cannot start with a digit). *)
let aliases = [ ("mm2", "2mm") ]

let find name =
  let name =
    match List.assoc_opt name aliases with Some n -> n | None -> name
  in
  match List.find_opt (fun a -> a.App.name = name) all with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "Suite.find: unknown application %s (have: %s)" name
           (String.concat ", " (List.map (fun a -> a.App.name) all)))

let by_category cat = List.filter (fun a -> a.App.category = cat) all

let names = List.map (fun a -> a.App.name) all
