(* bpr (Rodinia backprop): neural-network layer forward pass.  Each
   16x16 CTA stages a slice of the input layer in shared memory,
   multiplies by the weight matrix, and tree-reduces partial sums with
   barriers — the suite's heaviest shared-memory user (paper Fig 9).
   Global loads deterministic. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

let height = 16 (* threads per CTA dimension *)

(* shared layout: sh_in[16] floats at 0, sh_w[16][16] at 64 bytes *)
let kernel () =
  let b =
    B.create ~name:"bpr_layerforward"
      ~params:[ u64 "input"; u64 "weights"; u64 "partial"; u32 "hid" ]
      ~smem_bytes:((height * 4) + (height * height * 4))
      ()
  in
  let inp = B.ld_param b "input" in
  let wp = B.ld_param b "weights" in
  let pp = B.ld_param b "partial" in
  let hid = B.ld_param b "hid" in
  let tx = B.mov b B.tid_x in
  let ty = B.mov b B.tid_y in
  let by = B.mov b B.ctaid_y in
  (* index of this CTA's input slice element ty *)
  let index_in = B.add b (B.mul b by (B.int height)) ty in
  let sh_in_addr i = B.at b ~base:(B.int 0) ~scale:4 i in
  let sh_w_addr row col =
    B.at b ~base:(B.int (height * 4)) ~scale:4
      (B.add b (B.mul b row (B.int height)) col)
  in
  (* one column of threads stages the input slice *)
  let p_tx0 = B.setp b Eq tx (B.int 0) in
  B.if_ b p_tx0 (fun () ->
      let v = ldf b inp index_in in
      B.st b Shared F32 (sh_in_addr ty) v);
  B.bar b;
  (* weight elements: w[index_in * hid + tx] *)
  let widx = B.add b (B.mul b index_in hid) tx in
  let w = ldf b wp widx in
  let shin = B.ld b Shared F32 (sh_in_addr ty) in
  B.st b Shared F32 (sh_w_addr ty tx) (B.fmul b w shin);
  B.bar b;
  (* tree reduction over ty: stride 1,2,4,8 as power-of-two steps *)
  List.iter
    (fun stride ->
      let rem = B.rem b ty (B.int (2 * stride)) in
      let p_active = B.setp b Eq rem (B.int 0) in
      B.if_ b p_active (fun () ->
          let mine = B.ld b Shared F32 (sh_w_addr ty tx) in
          let other =
            B.ld b Shared F32 (sh_w_addr (B.add b ty (B.int stride)) tx)
          in
          B.st b Shared F32 (sh_w_addr ty tx) (B.fadd b mine other));
      B.bar b)
    [ 1; 2; 4; 8 ];
  (* row 0 of threads writes the partial sums *)
  let p_ty0 = B.setp b Eq ty (B.int 0) in
  B.if_ b p_ty0 (fun () ->
      let out_idx = B.add b (B.mul b by hid) tx in
      let v = B.ld b Shared F32 (sh_w_addr (B.int 0) tx) in
      stf b pp out_idx v);
  B.finish b

let size_of_scale = function
  | App.Small -> 1024 (* input units *)
  | App.Default -> 16384
  | App.Large -> 65536

let make scale =
  let n_in = size_of_scale scale in
  let hid = height in
  let rng = Prng.create 0xB6B6 in
  let input = Array.init n_in (fun _ -> Prng.float_range rng 0.0 1.0) in
  let weights =
    Array.init (n_in * hid) (fun _ -> Prng.float_range rng (-0.5) 0.5)
  in
  let n_blocks = n_in / height in
  let global = Gsim.Mem.create (16 * 1024 * 1024) in
  let layout = Layout.create global in
  let in_base = Dataset.store_f32_array layout input in
  let w_base = Dataset.store_f32_array layout weights in
  let p_base = Layout.alloc_f32 layout (n_blocks * hid) in
  let kernel = kernel () in
  let launch () =
    Gsim.Launch.create ~kernel ~grid:(1, n_blocks, 1)
      ~block:(height, height, 1)
      ~params:
        [ Layout.param "input" in_base; Layout.param "weights" w_base;
          Layout.param "partial" p_base; Layout.param_int "hid" hid ]
      ~global
  in
  let check () =
    let input32 = Array.map round_f32 input in
    let weights32 = Array.map round_f32 weights in
    let ok = ref true in
    for by = 0 to min (n_blocks - 1) 31 do
      for tx = 0 to hid - 1 do
        (* replicate the tree reduction's f32 rounding order *)
        let vals =
          Array.init height (fun ty ->
              let idx = (by * height) + ty in
              round_f32 (weights32.((idx * hid) + tx) *. input32.(idx)))
        in
        let stride = ref 1 in
        while !stride < height do
          let ty = ref 0 in
          while !ty < height do
            if !ty + !stride < height then
              vals.(!ty) <- round_f32 (vals.(!ty) +. vals.(!ty + !stride));
            ty := !ty + (2 * !stride)
          done;
          stride := !stride * 2
        done;
        let got = Gsim.Mem.get_f32 global (p_base + (4 * ((by * hid) + tx))) in
        if not (App.close_f32 vals.(0) got) then ok := false
      done
    done;
    !ok
  in
  App.launch_list ~global ~check [ launch ]

let app =
  {
    App.name = "bpr";
    category = App.Image;
    description = "back-propagation layer forward (shared-memory reduction)";
    seed = 0xB6B6;
    make;
  }
