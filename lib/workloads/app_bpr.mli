(** Table I application: see the implementation header for the
    algorithm, dataset and load-classification structure. *)

val app : App.t
