(* 2mm (PolyBench-GPU): two back-to-back dense matrix multiplications,
   tmp = A*B then out = tmp*C.  One thread per output element; all
   global loads are indexed by thread/CTA ids and the loop counter, so
   every load is deterministic. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

(* C[i][j] = sum_k A[i][k] * B[k][j]   (nk inner, nj columns) *)
let mm_kernel name =
  let b =
    B.create ~name
      ~params:[ u64 "A"; u64 "Bm"; u64 "Cm"; u32 "ni"; u32 "nk"; u32 "nj" ]
      ()
  in
  let ap = B.ld_param b "A" in
  let bp = B.ld_param b "Bm" in
  let cp = B.ld_param b "Cm" in
  let ni = B.ld_param b "ni" in
  let nk = B.ld_param b "nk" in
  let nj = B.ld_param b "nj" in
  let j = gtid_x b in
  let i = gtid_y b in
  let pi = B.setp b Lt i ni in
  let pj = B.setp b Lt j nj in
  let inside = B.pand b pi pj in
  B.if_ b inside (fun () ->
      let acc = f32_acc b in
      B.for_loop b ~init:(B.int 0) ~bound:nk ~step:(B.int 1) (fun k ->
          let a = ldf b ap (B.add b (B.mul b i nk) k) in
          let bv = ldf b bp (B.add b (B.mul b k nj) j) in
          B.emit b (Ptx.Instr.Fma (F32, acc, a, bv, Reg acc)));
      stf b cp (B.add b (B.mul b i nj) j) (Reg acc));
  B.finish b

let size_of_scale = function
  | App.Small -> 64
  | App.Default -> 160
  | App.Large -> 256

let block = (32, 8, 1)

let make scale =
  let n = size_of_scale scale in
  let rng = Prng.create 0x2A2A in
  let a = Dataset.dense_matrix rng n n in
  let bm = Dataset.dense_matrix rng n n in
  let c = Dataset.dense_matrix rng n n in
  let global = Gsim.Mem.create (8 * 1024 * 1024) in
  let layout = Layout.create global in
  let a_base = Dataset.store_f32_array layout a in
  let b_base = Dataset.store_f32_array layout bm in
  let c_base = Dataset.store_f32_array layout c in
  let tmp_base = Layout.alloc_f32 layout (n * n) in
  let out_base = Layout.alloc_f32 layout (n * n) in
  let bx, by, _ = block in
  let grid = (cdiv n bx, cdiv n by, 1) in
  let kernel = mm_kernel "mm2" in
  let launch ~a ~b ~c () =
    Gsim.Launch.create ~kernel ~grid ~block
      ~params:
        [ Layout.param "A" a; Layout.param "Bm" b; Layout.param "Cm" c;
          Layout.param_int "ni" n; Layout.param_int "nk" n;
          Layout.param_int "nj" n ]
      ~global
  in
  (* host reference with the simulator's f32 fma rounding *)
  let reference () =
    let mm x y =
      let out = Array.make (n * n) 0.0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let acc = ref 0.0 in
          for k = 0 to n - 1 do
            acc := round_f32 ((x.((i * n) + k) *. y.((k * n) + j)) +. !acc)
          done;
          out.((i * n) + j) <- !acc
        done
      done;
      out
    in
    let a32 = Array.map round_f32 a in
    let b32 = Array.map round_f32 bm in
    let c32 = Array.map round_f32 c in
    mm (mm a32 b32) c32
  in
  let check () =
    let expect = reference () in
    let ok = ref true in
    for i = 0 to (n * n) - 1 do
      if
        not
          (App.close_f32 expect.(i) (Gsim.Mem.get_f32 global (out_base + (4 * i))))
      then ok := false
    done;
    !ok
  in
  App.launch_list ~global ~check
    [
      launch ~a:a_base ~b:b_base ~c:tmp_base;
      launch ~a:tmp_base ~b:c_base ~c:out_base;
    ]

let app =
  {
    App.name = "2mm";
    category = App.Linear;
    description = "two dense matrix multiplications (tmp = A*B; out = tmp*C)";
    seed = 0x2A2A;
    make;
  }
