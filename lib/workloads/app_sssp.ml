(* sssp (LonestarGPU): single-source shortest paths, Bellman-Ford
   style.  Each thread relaxes the out-edges of one vertex; distance
   updates go through atomic-min on the destination (a non-deterministic
   access through the loaded edge target).  The host relaunches until a
   fixpoint. *)

open Ptx.Types
module B = Ptx.Builder
open Kutil

let inf = 0x3FFFFFFF

let kernel () =
  let b =
    B.create ~name:"sssp_relax"
      ~params:
        [ u64 "row_ptr"; u64 "edges"; u64 "w"; u64 "dist"; u64 "flag";
          u32 "n" ]
      ()
  in
  let rp = B.ld_param b "row_ptr" in
  let ep = B.ld_param b "edges" in
  let wp = B.ld_param b "w" in
  let dp = B.ld_param b "dist" in
  let flag = B.ld_param b "flag" in
  let n = B.ld_param b "n" in
  let v = gtid_x b in
  let pin = B.setp b Lt v n in
  B.if_ b pin (fun () ->
      let dv = ldu b dp v in
      let preach = B.setp b Lt dv (B.int inf) in
      B.if_ b preach (fun () ->
          let start = ldu b rp v in
          let stop = ldu b rp (B.add b v (B.int 1)) in
          B.for_loop b ~init:start ~bound:stop ~step:(B.int 1) (fun e ->
              let dst = ldu b ep e in
              let wt = ldu b wp e in
              let alt = B.add b dv wt in
              let old = ldu b dp dst in
              let pbetter = B.setp b Lt alt old in
              B.if_ b pbetter (fun () ->
                  let prev =
                    B.atom b Amin U32 (B.at b ~base:dp ~scale:4 dst) alt
                  in
                  let pimproved = B.setp b Lt alt prev in
                  B.if_ b pimproved (fun () ->
                      B.st b Global U32 (B.addr flag) (B.int 1))))));
  B.finish b

let size_of_scale = function
  | App.Small -> (10, 4)
  | App.Default -> (14, 8)
  | App.Large -> (16, 8)

let make scale =
  let sc, ef = size_of_scale scale in
  let rng = Prng.create 0x5559 in
  let g =
    Dataset.relabel rng
      (Dataset.symmetrize (Dataset.rmat rng ~scale:sc ~edge_factor:ef))
  in
  let n = g.Dataset.n_rows in
  (* integer weights in [1, 100] *)
  let weights =
    Array.init g.Dataset.n_edges (fun e ->
        ignore e;
        1 + Prng.int rng 100)
  in
  let global = Gsim.Mem.create (64 * 1024 * 1024) in
  let layout = Layout.create global in
  let rp_base = Dataset.store_u32_array layout g.Dataset.row_ptr in
  let ep_base = Dataset.store_u32_array layout g.Dataset.col_idx in
  let w_base = Dataset.store_u32_array layout weights in
  let d_base = Layout.alloc_u32 layout n in
  let flag = Layout.alloc_u32 layout 1 in
  let source = Dataset.max_degree_vertex g in
  Layout.fill_u32 layout d_base n (fun v -> if v = source then 0 else inf);
  let kernel = kernel () in
  let launch () =
    Gsim.Launch.create ~kernel
      ~grid:(cdiv n 512, 1, 1)
      ~block:(512, 1, 1)
      ~params:
        [ Layout.param "row_ptr" rp_base; Layout.param "edges" ep_base;
          Layout.param "w" w_base; Layout.param "dist" d_base;
          Layout.param "flag" flag; Layout.param_int "n" n ]
      ~global
  in
  let iters = ref 0 in
  let max_iters = 64 in
  let started = ref false in
  let next_launch () =
    if not !started then begin
      started := true;
      Gsim.Mem.set_u32 global flag 0;
      Some (launch ())
    end
    else begin
      incr iters;
      if Gsim.Mem.get_u32 global flag <> 0 && !iters < max_iters then begin
        Gsim.Mem.set_u32 global flag 0;
        Some (launch ())
      end
      else None
    end
  in
  let check () =
    (* host Dijkstra via simple Bellman-Ford (small graphs) *)
    let dist = Array.make n inf in
    dist.(source) <- 0;
    let changed = ref true in
    while !changed do
      changed := false;
      for v = 0 to n - 1 do
        if dist.(v) < inf then
          for e = g.Dataset.row_ptr.(v) to g.Dataset.row_ptr.(v + 1) - 1 do
            let d = g.Dataset.col_idx.(e) in
            let alt = dist.(v) + weights.(e) in
            if alt < dist.(d) then begin
              dist.(d) <- alt;
              changed := true
            end
          done
      done
    done;
    let ok = ref true in
    for v = 0 to n - 1 do
      if Gsim.Mem.get_u32 global (d_base + (4 * v)) <> dist.(v) then ok := false
    done;
    !ok
  in
  { App.global; next_launch; check }

let app =
  {
    App.name = "sssp";
    category = App.Graph;
    description = "single-source shortest paths (Bellman-Ford, atomic-min)";
    seed = 0x5559;
    make;
  }
