(* Section X.B in action: compare round-robin CTA scheduling against
   the paper's clustered proposal (neighbouring CTAs on the same SM) on
   an application with strong neighbour-CTA locality.

     dune exec examples/cta_scheduling.exe [app] *)

let run_variant app scale sched name =
  let cfg =
    Gsim.Config.default
    |> Gsim.Config.with_cta_sched sched
    |> Gsim.Config.with_caps ~max_warp_insts:150_000 ()
  in
  let r =
    match Critload.Runner.run ~cfg ~scale app with
    | Ok r -> r
    | Error e -> failwith (Gsim.Sim_error.to_string e)
  in
  let s = Critload.Runner.Report.stats_exn r in
  let open Dataflow.Classify in
  Printf.printf
    "%-12s cycles=%-9d L1 miss: N=%4.1f%% D=%4.1f%%  turnaround: N=%.0f \
     D=%.0f\n"
    name s.Gsim.Stats.cycles
    (100. *. Gsim.Stats.l1_miss_ratio s Nondeterministic)
    (100. *. Gsim.Stats.l1_miss_ratio s Deterministic)
    (Gsim.Stats.avg_turnaround s Nondeterministic)
    (Gsim.Stats.avg_turnaround s Deterministic);
  s.Gsim.Stats.cycles

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "2mm" in
  let app = Workloads.Suite.find name in
  let scale = Workloads.App.Default in
  Printf.printf "CTA scheduling ablation on %s\n" name;
  let base = run_variant app scale Gsim.Config.Round_robin "round-robin" in
  let c2 = run_variant app scale (Gsim.Config.Clustered 2) "clustered-2" in
  let c4 = run_variant app scale (Gsim.Config.Clustered 4) "clustered-4" in
  Printf.printf "speedup over round-robin: clustered-2 %.2fx, clustered-4 %.2fx\n"
    (float_of_int base /. float_of_int c2)
    (float_of_int base /. float_of_int c4)
