(* The paper's Section X.A workflow end to end: classify an
   application's loads, derive per-instruction hardware policies, and
   compare the advisor-guided machine against the baseline.

     dune exec examples/advisor_workflow.exe [app] [cap]
   e.g. dune exec examples/advisor_workflow.exe -- spmv 80000 *)

let run_variant app scale cfg name =
  let r =
    match Critload.Runner.run ~cfg ~scale app with
    | Ok r -> r
    | Error e -> failwith (Gsim.Sim_error.to_string e)
  in
  let s = Critload.Runner.Report.stats_exn r in
  let open Dataflow.Classify in
  Printf.printf
    "%-9s cycles=%-8d  N: L1 miss %4.1f%%  turnaround %6.1f   rsrv-fail \
     cycles %4.1f%%\n"
    name s.Gsim.Stats.cycles
    (100. *. Gsim.Stats.l1_miss_ratio s Nondeterministic)
    (Gsim.Stats.avg_turnaround s Nondeterministic)
    (let b = Gsim.Stats.l1_cycle_breakdown s in
     100. *. (b.(3) +. b.(4) +. b.(5)))

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "spmv" in
  let cap =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 120_000
  in
  let scale = Workloads.App.Default in
  let app = Workloads.Suite.find name in

  (* 1. static analyses -> per-load advice *)
  let advice = Critload.Advisor.advise_app app scale in
  Format.printf "Per-load advice for %s:@.%a@." name Critload.Advisor.pp_advice
    advice;

  (* 2. baseline vs guided machine *)
  let base = Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:cap () in
  let guided =
    base |> Gsim.Config.with_pc_policies (Critload.Advisor.policies advice)
  in
  run_variant app scale base "baseline";
  run_variant app scale guided "advisor"
