(* Graph-application characterization: reproduce the paper's bfs story
   end to end on one app — load classification (Code 1), coalescing
   disparity (Fig 2), reservation failures (Fig 3), and the "hidden"
   inter-CTA locality (Figs 10-12).

     dune exec examples/graph_locality.exe [app] [scale]
   e.g. dune exec examples/graph_locality.exe -- sssp small *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "bfs" in
  let scale =
    if Array.length Sys.argv > 2 then
      Workloads.App.scale_of_string Sys.argv.(2)
    else Workloads.App.Default
  in
  let app = Workloads.Suite.find name in
  Printf.printf "== %s: %s ==\n\n" app.Workloads.App.name
    app.Workloads.App.description;

  (* static classification of every kernel the app launches *)
  let run = app.Workloads.App.make scale in
  let seen = Hashtbl.create 8 in
  let continue_ = ref true in
  while !continue_ do
    match run.Workloads.App.next_launch () with
    | None -> continue_ := false
    | Some launch ->
        let k = launch.Gsim.Launch.kernel in
        if not (Hashtbl.mem seen k.Ptx.Kernel.kname) then begin
          Hashtbl.add seen k.Ptx.Kernel.kname ();
          Format.printf "%a@." Dataflow.Classify.pp_result
            launch.Gsim.Launch.classes
        end
  done;

  (* dynamic behaviour: functional run with locality analysis *)
  let fr =
    match
      Critload.Runner.run ~mode:Critload.Runner.Func ~scale
        ~func_cap:2_000_000 app
    with
    | Ok r -> Critload.Runner.Report.func_exn r
    | Error e -> failwith (Gsim.Sim_error.to_string e)
  in
  let fs = fr.Critload.Runner.fr_fs in
  let open Dataflow.Classify in
  Printf.printf "\ndynamic global load warps: D = %d, N = %d\n"
    fs.Gsim.Funcsim.gld_warps.(0)
    fs.Gsim.Funcsim.gld_warps.(1);
  Printf.printf "requests per active thread: N = %.2f vs D = %.2f\n"
    (Gsim.Funcsim.requests_per_active_thread fs Nondeterministic)
    (Gsim.Funcsim.requests_per_active_thread fs Deterministic);
  Printf.printf "cold-miss ratio: %.1f%%; avg accesses per 128B block: %.1f\n"
    (100.0 *. Gsim.Funcsim.cold_miss_ratio fs)
    (Gsim.Funcsim.avg_accesses_per_block fs);
  let sh = Gsim.Funcsim.sharing fs in
  Printf.printf
    "inter-CTA: %.1f%% of blocks / %.1f%% of accesses shared; avg %.1f \
     CTAs per shared block\n"
    (100.0 *. sh.Gsim.Funcsim.sh_block_ratio)
    (100.0 *. sh.Gsim.Funcsim.sh_access_ratio)
    sh.Gsim.Funcsim.sh_avg_ctas;
  let hist = Gsim.Funcsim.cta_distance_histogram fs in
  let top =
    List.sort (fun (_, a) (_, b) -> compare b a) hist |> fun l ->
    List.filteri (fun i _ -> i < 6) l
  in
  Printf.printf "top CTA distances: %s\n"
    (String.concat ", "
       (List.map (fun (d, f) -> Printf.sprintf "%d (%.0f%%)" d (100. *. f)) top));

  (* timing behaviour *)
  let cfg = Gsim.Config.default |> Gsim.Config.with_caps ~max_warp_insts:150_000 () in
  let tr =
    match Critload.Runner.run ~cfg ~scale app with
    | Ok r -> r
    | Error e -> failwith (Gsim.Sim_error.to_string e)
  in
  let st = Critload.Runner.Report.stats_exn tr in
  Printf.printf "\ncycle sim (capped): %d cycles\n" st.Gsim.Stats.cycles;
  Printf.printf "avg turnaround: N = %.0f vs D = %.0f cycles\n"
    (Gsim.Stats.avg_turnaround st Nondeterministic)
    (Gsim.Stats.avg_turnaround st Deterministic);
  let b = Gsim.Stats.l1_cycle_breakdown st in
  Printf.printf
    "L1 cycles: %.0f%% hit, %.0f%% hit-reserved, %.0f%% miss, %.0f%% \
     tag-fail, %.0f%% mshr-fail, %.0f%% icnt-fail\n"
    (100. *. b.(0)) (100. *. b.(1)) (100. *. b.(2)) (100. *. b.(3))
    (100. *. b.(4)) (100. *. b.(5))
