(* Quickstart: build a small kernel with the eDSL, classify its loads
   with the paper's backward-dataflow analysis, and run it on both the
   functional and the cycle simulator.

     dune exec examples/quickstart.exe *)

open Ptx.Types
module B = Ptx.Builder

let () =
  (* 1. A gather kernel: y[i] = x[idx[i]].  The idx load is
     deterministic (address from thread id + parameter); the x load is
     non-deterministic (address from the loaded index). *)
  let b =
    B.create ~name:"gather"
      ~params:
        [ { Ptx.Kernel.pname = "idx"; pty = U64 };
          { Ptx.Kernel.pname = "x"; pty = U64 };
          { Ptx.Kernel.pname = "y"; pty = U64 };
          { Ptx.Kernel.pname = "n"; pty = U32 } ]
      ()
  in
  let idx_p = B.ld_param b "idx" in
  let x_p = B.ld_param b "x" in
  let y_p = B.ld_param b "y" in
  let n = B.ld_param b "n" in
  let i = B.global_tid b in
  let in_range = B.setp b Lt i n in
  B.if_ b in_range (fun () ->
      let idx = B.ld b Global U32 (B.at b ~base:idx_p ~scale:4 i) in
      let v = B.ld b Global F32 (B.at b ~base:x_p ~scale:4 idx) in
      B.st b Global F32 (B.at b ~base:y_p ~scale:4 i) v);
  let kernel = B.finish b in

  (* 2. Print the kernel and its load classification. *)
  print_string (Ptx.Kernel.to_string kernel);
  let classes = Dataflow.Classify.classify kernel in
  Format.printf "%a@." Dataflow.Classify.pp_result classes;
  Format.printf "static coalescing prediction:@.%a@."
    (Dataflow.Stride.pp_predictions ~block:(256, 1, 1))
    kernel;

  (* 3. Set up data: a scrambled permutation. *)
  let n_elems = 4096 in
  let global = Gsim.Mem.create (1 lsl 20) in
  let idx_base = 0 and x_base = 4 * n_elems and y_base = 8 * n_elems in
  for i = 0 to n_elems - 1 do
    Gsim.Mem.set_u32 global (idx_base + (4 * i)) (i * 73 mod n_elems);
    Gsim.Mem.set_f32 global (x_base + (4 * i)) (float_of_int i)
  done;
  let launch =
    Gsim.Launch.create ~kernel
      ~grid:(n_elems / 256, 1, 1)
      ~block:(256, 1, 1)
      ~params:
        [ ("idx", Int64.of_int idx_base); ("x", Int64.of_int x_base);
          ("y", Int64.of_int y_base); ("n", Int64.of_int n_elems) ]
      ~global
  in

  (* 4. Functional simulation: correct results + coalescing stats. *)
  let fs = Gsim.Funcsim.run launch in
  Printf.printf "functional: %d warp instructions, y[1] = %.1f\n"
    fs.Gsim.Funcsim.warp_insts
    (Gsim.Mem.get_f32 global (y_base + 4));
  Printf.printf "  requests/warp:  N = %.2f   D = %.2f\n"
    (Gsim.Funcsim.requests_per_warp fs Dataflow.Classify.Nondeterministic)
    (Gsim.Funcsim.requests_per_warp fs Dataflow.Classify.Deterministic);

  (* 5. Cycle simulation: turnaround per class. *)
  let gpu = Gsim.Gpu.run launch in
  let st = gpu.Gsim.Gpu.stats in
  Printf.printf "cycle sim: %d cycles, %d warp instructions\n"
    st.Gsim.Stats.cycles st.Gsim.Stats.warp_insts;
  Printf.printf "  avg turnaround: N = %.0f cycles   D = %.0f cycles\n"
    (Gsim.Stats.avg_turnaround st Dataflow.Classify.Nondeterministic)
    (Gsim.Stats.avg_turnaround st Dataflow.Classify.Deterministic)
