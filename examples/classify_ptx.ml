(* Classify loads in a kernel written in the textual PTX-like syntax —
   the workflow for code that was not built with the OCaml eDSL.

     dune exec examples/classify_ptx.exe [file.ptx]

   Without an argument, a built-in example (the paper's Code 1 pattern)
   is parsed and classified. *)

let code1 =
  {|
.kernel bfs_code1 (.param .u64 g_mask, .param .u64 g_nodes, .param .u64 g_edges, .param .u64 g_visited, .param .u32 n)
.reg 16 .pred 4 .shared 0
{
  ld.param.u64 %r0, [g_mask];
  ld.param.u64 %r1, [g_nodes];
  ld.param.u64 %r2, [g_edges];
  ld.param.u64 %r3, [g_visited];
  ld.param.u64 %r4, [n];
  mad.lo %r5, %ctaid.x, %ntid.x, %tid.x;   // tid
  setp.ge.s32 %p0, %r5, %r4;
@%p0 bra DONE;
  mad.lo %r6, %r5, 4, %r0;
  ld.global.u32 %r7, [%r6];                // g_mask[tid]  (deterministic)
  setp.eq.s32 %p1, %r7, 0;
@%p1 bra DONE;
  mad.lo %r8, %r5, 4, %r1;
  ld.global.u32 %r9, [%r8];                // start = g_nodes[tid]  (D)
  mad.lo %r10, %r9, 4, %r2;
  ld.global.u32 %r11, [%r10];              // id = g_edges[start]  (N)
  mad.lo %r12, %r11, 4, %r3;
  ld.global.u32 %r13, [%r12];              // g_visited[id]  (N)
  st.global.u32 [%r6], %r13;
DONE:
  exit;
}
|}

let () =
  let text =
    if Array.length Sys.argv > 1 then begin
      let ic = open_in Sys.argv.(1) in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    end
    else code1
  in
  match Ptx.Parse.kernel_of_string text with
  | exception Ptx.Parse.Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
  | kernel ->
      Printf.printf "parsed kernel %s (%d instructions)\n\n"
        kernel.Ptx.Kernel.kname
        (Array.length kernel.Ptx.Kernel.body);
      let res = Dataflow.Classify.classify kernel in
      Format.printf "%a@." Dataflow.Classify.pp_result res;
      let d, n = Dataflow.Classify.count_global res in
      Printf.printf "global loads: %d deterministic, %d non-deterministic\n"
        d n;
      (* round-trip check: print and reparse *)
      let text' = Ptx.Kernel.to_string kernel in
      let k2 = Ptx.Parse.kernel_of_string text' in
      Printf.printf "print/parse round-trip: %s\n"
        (if Ptx.Kernel.to_string k2 = text' then "stable" else "UNSTABLE")
